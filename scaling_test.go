// TestParallelScalingRegression guards the work-stealing engine's reason to
// exist: a multi-worker pool must not fall off a cliff relative to one
// worker. It is a coarse tripwire, not a benchmark — the committed numbers
// live in BENCH_replay.json (see BenchmarkReplayBaseline).
package dampi

import (
	"runtime"
	"testing"
	"time"

	"dampi/verify"
	"dampi/workloads/adlb"
)

func TestParallelScalingRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement: skipped under -short")
	}
	serialProcs := runtime.GOMAXPROCS(0)
	prog := adlb.Program(adlb.DriverConfig{})
	measure := func(workers int) float64 {
		prev := runtime.GOMAXPROCS(parallelProcs(workers, serialProcs))
		defer runtime.GOMAXPROCS(prev)
		best := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			res, err := verify.Run(verify.Config{
				Procs: 8, MixingBound: 1, MaxInterleavings: 1000, Workers: workers,
			}, prog)
			el := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errored() {
				t.Fatal(res.Errors[0].Err)
			}
			if rate := float64(res.Interleavings) / el.Seconds(); rate > best {
				best = rate
			}
		}
		return best
	}

	w1 := measure(1)
	w4 := measure(4)

	// Generous tolerance: on a machine with >= 4 cores, 4 workers should beat
	// 1, but this test also runs on single-core CI where the best a parallel
	// pool can do is tie (minus cache and GC pressure from 4 live worlds) and
	// timing noise is large. 0.4 still catches the failure mode this guards
	// against — a shared lock serializing the pool so hard that adding
	// workers collapses throughput.
	const tolerance = 0.4
	t.Logf("adlb throughput: workers=1 %.1f/s, workers=4 %.1f/s (NumCPU=%d)", w1, w4, runtime.NumCPU())
	if w4 < tolerance*w1 {
		t.Errorf("workers=4 throughput %.1f/s is below %.0f%% of workers=1 %.1f/s: parallel pool is serializing",
			w4, tolerance*100, w1)
	}
}
