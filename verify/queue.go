package verify

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"dampi/internal/core"
	"dampi/internal/dcoord"
	"dampi/internal/jobqueue"
	"dampi/mpi"
)

// JobSpec is a self-contained verification job description: the workload
// name, its parameters, and the exploration knobs. Submitted over REST (or
// Submit), announced to workers, and hashed for dedup.
type JobSpec = dcoord.JobSpec

// Job is one persisted job of a verification service.
type Job = jobqueue.Job

// JobReport is a persisted job outcome.
type JobReport = jobqueue.JobReport

// QueueConfig configures a verification service: a persistent job queue
// (REST API + dashboard) draining onto a long-lived dcoord worker pool.
type QueueConfig struct {
	// WorkerAddr is the cluster listen address workers (dampid) dial.
	WorkerAddr string
	// APIAddr is the HTTP listen address for the REST API and dashboard.
	// Empty disables the built-in HTTP server (use Handler with your own).
	APIAddr string
	// StoreDir is the persistence root: WAL, snapshots, checkpoints and
	// reports live under it, and a restarted service resumes from it.
	StoreDir string
	// Validate, if non-nil, vets specs at submission (the CLI installs the
	// workload-registry check).
	Validate func(spec JobSpec) error
	// LeaseTTL, MaxRedeliveries and CheckpointEvery are the per-job engine
	// knobs (defaults as in ClusterConfig).
	LeaseTTL        time.Duration
	MaxRedeliveries int
	CheckpointEvery int
	// SnapshotEvery is the WAL record count between store snapshots
	// (default 256).
	SnapshotEvery int
	// TTLSweepEvery is the period of the job-TTL sweep (default 5s).
	TTLSweepEvery time.Duration
	// OnEvent, if non-nil, receives service lifecycle lines for logging.
	OnEvent func(string)
}

// QueueServer is a running verification service.
type QueueServer struct {
	svc      *jobqueue.Service
	store    *jobqueue.Store
	handler  http.Handler
	workerLn net.Listener
	apiLn    net.Listener
	httpSrv  *http.Server
	runDone  chan struct{}
}

// ServeQueue starts a verification service: it opens (or resumes) the job
// store at cfg.StoreDir, listens for workers on cfg.WorkerAddr, serves the
// REST API and dashboard on cfg.APIAddr, and drains the queue until Stop.
// Jobs interrupted by a previous crash are re-queued and resume from their
// frontier checkpoints.
func ServeQueue(cfg QueueConfig) (*QueueServer, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("verify: ServeQueue requires StoreDir")
	}
	if cfg.WorkerAddr == "" {
		return nil, fmt.Errorf("verify: ServeQueue requires WorkerAddr")
	}
	store, err := jobqueue.OpenStore(jobqueue.StoreConfig{Dir: cfg.StoreDir, SnapshotEvery: cfg.SnapshotEvery})
	if err != nil {
		return nil, err
	}
	server := dcoord.NewServer(dcoord.ServerConfig{
		LeaseTTL:        cfg.LeaseTTL,
		MaxRedeliveries: cfg.MaxRedeliveries,
		CheckpointEvery: cfg.CheckpointEvery,
		OnEvent:         cfg.OnEvent,
	})
	svc, err := jobqueue.NewService(jobqueue.ServiceConfig{
		Store:      store,
		Server:     server,
		Validate:   cfg.Validate,
		SweepEvery: cfg.TTLSweepEvery,
		OnEvent:    cfg.OnEvent,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	q := &QueueServer{svc: svc, store: store, handler: jobqueue.NewAPI(svc), runDone: make(chan struct{})}
	q.workerLn, err = server.ListenAndServe(cfg.WorkerAddr)
	if err != nil {
		store.Close()
		return nil, err
	}
	if cfg.APIAddr != "" {
		q.apiLn, err = net.Listen("tcp", cfg.APIAddr)
		if err != nil {
			q.workerLn.Close()
			store.Close()
			return nil, err
		}
		q.httpSrv = &http.Server{Handler: q.handler}
		go func() { _ = q.httpSrv.Serve(q.apiLn) }()
	}
	go func() {
		defer close(q.runDone)
		svc.Run()
	}()
	return q, nil
}

// WorkerAddr returns the bound cluster listen address (useful with ":0").
func (q *QueueServer) WorkerAddr() net.Addr { return q.workerLn.Addr() }

// APIAddr returns the bound HTTP listen address, or nil when the built-in
// server is disabled.
func (q *QueueServer) APIAddr() net.Addr {
	if q.apiLn == nil {
		return nil
	}
	return q.apiLn.Addr()
}

// Handler returns the REST/dashboard handler, for embedding the service in
// an existing HTTP server instead of APIAddr.
func (q *QueueServer) Handler() http.Handler { return q.handler }

// Submit queues a job directly (the in-process equivalent of POST /jobs).
func (q *QueueServer) Submit(spec JobSpec, ttl time.Duration) (*Job, bool, error) {
	return q.svc.Submit(spec, ttl)
}

// Stop shuts down gracefully: the active job drains and is re-queued for
// the next start, the store snapshots, workers are told goodbye.
func (q *QueueServer) Stop() {
	if q.httpSrv != nil {
		_ = q.httpSrv.Close()
	}
	q.svc.Stop()
	<-q.runDone
}

// JoinQueue creates an any-workload worker for the verification service at
// cfg.Addr: instead of being pinned to one program, it builds the program
// for each announced job through factory. The exploration parameters come
// from each job's spec, so cfg only contributes the connection fields
// (Addr, Slots, WorkerName, OnEvent).
func JoinQueue(cfg ClusterConfig, factory func(spec JobSpec) (func(p *mpi.Proc) error, error)) (*Worker, error) {
	if factory == nil {
		return nil, fmt.Errorf("verify: JoinQueue requires a program factory")
	}
	w := dcoord.NewWorker(dcoord.WorkerConfig{
		Addr:    cfg.Addr,
		Name:    cfg.WorkerName,
		Slots:   cfg.Slots,
		OnEvent: cfg.OnEvent,
		Factory: func(spec dcoord.JobSpec) (core.ExplorerConfig, error) {
			program, err := factory(spec)
			if err != nil {
				return core.ExplorerConfig{}, err
			}
			ecfg := spec.ExplorerConfig()
			ecfg.Program = program
			return ecfg, nil
		},
	})
	return &Worker{w: w}, nil
}
