package verify_test

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"dampi/verify"
	"dampi/workloads/iprobe"
)

// pollProgram is the schedule-sampling demo program: the master's bug is
// reachable only when all three Iprobe polls are forced to report "not
// found", i.e. through three consecutive choice-point flips.
var pollProgram = iprobe.Program(iprobe.Config{})

func sampleCfg(seed uint64) verify.Config {
	return verify.Config{
		Procs:          2,
		Mode:           verify.ModeSample,
		SampleStrategy: "random",
		Samples:        24,
		Seed:           seed,
	}
}

// errorLines renders a result's failing interleavings in a deterministic,
// comparable form.
func errorLines(r *verify.Result) []string {
	var out []string
	for _, e := range r.Errors {
		out = append(out, e.Decisions.String()+": "+e.Err.Error())
	}
	sort.Strings(out)
	return out
}

// TestSampleSeedDeterminism: the same seed reproduces the same schedule set
// — identical sampled counts, identical distinct decision vectors, identical
// verdicts — across independent runs.
func TestSampleSeedDeterminism(t *testing.T) {
	a, err := verify.Run(sampleCfg(7), pollProgram)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := verify.Run(sampleCfg(7), pollProgram)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.Sampled != b.Sampled || a.SampledDistinct != b.SampledDistinct {
		t.Errorf("sampled counts differ: A %d/%d, B %d/%d",
			a.Sampled, a.SampledDistinct, b.Sampled, b.SampledDistinct)
	}
	if !reflect.DeepEqual(a.SampledSchedules, b.SampledSchedules) {
		t.Errorf("schedule sets differ:\nA: %v\nB: %v", a.SampledSchedules, b.SampledSchedules)
	}
	if a.Summary() != b.Summary() {
		t.Errorf("summaries differ:\nA: %s\nB: %s", a.Summary(), b.Summary())
	}
	if !reflect.DeepEqual(errorLines(a), errorLines(b)) {
		t.Errorf("verdicts differ:\nA: %v\nB: %v", errorLines(a), errorLines(b))
	}
	if a.Sampled == 0 {
		t.Error("sampling mode reported zero sampled schedules")
	}
	if len(a.SampledSchedules) != a.SampledDistinct {
		t.Errorf("dump has %d vectors, SampledDistinct = %d",
			len(a.SampledSchedules), a.SampledDistinct)
	}
	if !sort.StringsAreSorted(a.SampledSchedules) {
		t.Errorf("schedule dump is not sorted: %v", a.SampledSchedules)
	}
}

// TestSampleFindsIprobeBug: the seeded walk stacks the three Iprobe
// suppressions and reaches the abandonment bug that plain execution (and the
// default exhaustive exploration, which does not branch on Iprobe outcomes)
// never hits.
func TestSampleFindsIprobeBug(t *testing.T) {
	plain, err := verify.Run(verify.Config{Procs: 2}, pollProgram)
	if err != nil {
		t.Fatalf("exhaustive run: %v", err)
	}
	if plain.Errored() {
		t.Fatalf("default exhaustive exploration found the choice-point bug: %v", plain.Errors[0].Err)
	}
	res, err := verify.Run(sampleCfg(5), pollProgram)
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if !res.Errored() {
		t.Fatal("sampling did not find the Iprobe-outcome bug")
	}
	want := "{r0:[0→0 1→0 2→0]}"
	if got := res.Errors[0].Decisions.String(); got != want {
		t.Errorf("reproducer = %s, want %s", got, want)
	}
}

// TestChoicePointReproducerReplays: the reproducer a sampling run prints
// re-applies through ReplayChoicePoints and reproduces the deadlock; plain
// Replay does not track the Iprobe epochs, takes the natural outcomes, and
// must stay clean (the pre-choice-point contract).
func TestChoicePointReproducerReplays(t *testing.T) {
	res, err := verify.Run(sampleCfg(5), pollProgram)
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if !res.Errored() {
		t.Fatal("sampling did not find the Iprobe-outcome bug")
	}
	repro := res.Errors[0].Decisions

	r, err := verify.ReplayChoicePoints(2, pollProgram, repro)
	if err != nil {
		t.Fatalf("ReplayChoicePoints: %v", err)
	}
	if r.Err == nil {
		t.Error("ReplayChoicePoints did not reproduce the deadlock")
	}
	plain, err := verify.Replay(2, pollProgram, repro)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if plain.Err != nil {
		t.Errorf("plain Replay applied choice-point decisions it should not track: %v", plain.Err)
	}
}

// TestSampledSubsetOfExhaustive: on a space small enough to exhaust, every
// decision vector a sampled run visits is one the choice-point exhaustive
// exploration visits too, and every sampled verdict is confirmed by the
// exhaustive pass — sampling explores a subset, never an inconsistent space.
func TestSampledSubsetOfExhaustive(t *testing.T) {
	visited := map[string]bool{}
	var mu sync.Mutex
	ex, err := verify.Run(verify.Config{
		Procs:        2,
		ChoicePoints: true,
		MixingBound:  verify.Unbounded,
		OnInterleaving: func(r *verify.InterleavingResult) {
			mu.Lock()
			visited[r.Decisions.String()] = true
			mu.Unlock()
		},
	}, pollProgram)
	if err != nil {
		t.Fatalf("exhaustive run: %v", err)
	}
	res, err := verify.Run(sampleCfg(3), pollProgram)
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	for _, v := range res.SampledSchedules {
		if !visited[v] {
			t.Errorf("sampled vector %s not visited by the exhaustive exploration", v)
		}
	}
	exErrs := map[string]bool{}
	for _, l := range errorLines(ex) {
		exErrs[l] = true
	}
	for _, l := range errorLines(res) {
		if !exErrs[l] {
			t.Errorf("sampled verdict %q not confirmed by the exhaustive exploration", l)
		}
	}
}

// TestSampleClusterMatchesSerial: a sampling exploration farmed over the
// coordinator/worker cluster derives the identical seeded schedule set (and
// verdicts) a serial sampled run does.
func TestSampleClusterMatchesSerial(t *testing.T) {
	serial, err := verify.Run(sampleCfg(7), pollProgram)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	ccfg := verify.ClusterConfig{
		Config:   sampleCfg(7),
		Workload: "iprobe",
		Addr:     "127.0.0.1:0",
	}
	c, err := verify.Serve(ccfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wcfg := ccfg
	wcfg.Addr = c.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wcfg.WorkerName = string(rune('a' + i))
		w, err := verify.Join(wcfg, pollProgram)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	wg.Wait()

	if res.Sampled != serial.Sampled || res.SampledDistinct != serial.SampledDistinct {
		t.Errorf("cluster sampled %d/%d, serial %d/%d",
			res.Sampled, res.SampledDistinct, serial.Sampled, serial.SampledDistinct)
	}
	if !reflect.DeepEqual(res.SampledSchedules, serial.SampledSchedules) {
		t.Errorf("schedule sets differ:\ncluster: %v\nserial:  %v",
			res.SampledSchedules, serial.SampledSchedules)
	}
	if !reflect.DeepEqual(errorLines(res), errorLines(serial)) {
		t.Errorf("verdicts differ:\ncluster: %v\nserial:  %v",
			errorLines(res), errorLines(serial))
	}
}
