package verify

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"dampi/internal/core"
	"dampi/internal/dcoord"
	"dampi/internal/dexplore"
	"dampi/mpi"
)

// ClusterConfig configures one node of a distributed verification: either
// the coordinator (Serve) or a worker (Join). Both sides must be built from
// the same exploration parameters and workload name — the join handshake
// refuses any mismatch, because a worker replaying a different program or a
// different interleaving space would silently corrupt the merged report.
type ClusterConfig struct {
	// Config carries the exploration parameters (Procs, Clock, MixingBound,
	// ...). Coordinator-side, the fields that require running the program
	// locally are unsupported: CheckLeaks, CollectStats, OnInterleaving and
	// Workers must be zero (replays happen on the workers).
	Config

	// Workload names the program both sides run; part of the compatibility
	// fingerprint.
	Workload string

	// Addr is the coordinator's TCP address: the listen address for Serve
	// (":9477", "0.0.0.0:9477"), the dial address for Join.
	Addr string

	// LeaseTTL bounds how long a worker may hold a task without a heartbeat
	// before it is requeued (coordinator; default 10s).
	LeaseTTL time.Duration
	// MaxRedeliveries caps how often one task may lose its lease before the
	// exploration aborts as unhealthy (coordinator; default 3).
	MaxRedeliveries int

	// Slots is the worker's concurrent replay slot count (default 1).
	Slots int
	// WorkerName identifies the worker in status output (default host:pid).
	WorkerName string
	// Scale and Iters are the workload parameters the worker's program was
	// built with. Single-job coordinators ignore them; a job-queue server
	// uses them to dispatch only matching jobs to a pinned worker (0 =
	// unknown, matches any job).
	Scale int
	Iters int
	// OnEvent, if non-nil, receives worker lifecycle lines for logging.
	OnEvent func(string)
}

// explorerConfig translates the public Config to the core form (program may
// be nil on the coordinator, which never replays), including the
// choice-point and schedule-sampling configuration.
func (cfg *ClusterConfig) explorerConfig(program func(p *mpi.Proc) error) (core.ExplorerConfig, error) {
	ecfg := core.ExplorerConfig{
		Procs:             cfg.Procs,
		Program:           program,
		Clock:             cfg.Clock,
		DualClock:         cfg.DualClock,
		Transport:         cfg.Transport,
		AutoLoopThreshold: cfg.AutoLoopThreshold,
		MixingBound:       cfg.MixingBound,
	}
	if err := cfg.configureSampling(&ecfg); err != nil {
		return core.ExplorerConfig{}, err
	}
	return ecfg, nil
}

// fingerprint derives the compatibility fingerprint both Serve and Join
// exchange in the handshake.
func (cfg *ClusterConfig) fingerprint() (dcoord.Fingerprint, error) {
	ecfg, err := cfg.explorerConfig(nil)
	if err != nil {
		return dcoord.Fingerprint{}, err
	}
	return dcoord.FingerprintFor(cfg.Workload, &ecfg), nil
}

// Coordinator is the coordinator side of a distributed verification. It owns
// the exploration frontier and the merged report; workers created with Join
// connect to it and replay leased subtrees.
type Coordinator struct {
	c   *dcoord.Coordinator
	ln  net.Listener
	cfg ClusterConfig
}

// Serve starts the coordinator of a distributed verification, listening on
// cfg.Addr. It returns as soon as the listener is up; Wait blocks until the
// exploration finishes and returns the merged result, which is identical to
// what a single-process Run over the same parameters would report.
func Serve(cfg ClusterConfig) (*Coordinator, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("verify: Procs must be >= 1, got %d", cfg.Procs)
	}
	if cfg.Workload == "" {
		return nil, fmt.Errorf("verify: distributed verification requires a Workload name")
	}
	switch {
	case cfg.CheckLeaks:
		return nil, fmt.Errorf("verify: CheckLeaks is unsupported distributed (the canonical run happens on a worker); run the leak check locally")
	case cfg.CollectStats:
		return nil, fmt.Errorf("verify: CollectStats is unsupported distributed; collect statistics locally")
	case cfg.OnInterleaving != nil:
		return nil, fmt.Errorf("verify: OnInterleaving is unsupported distributed")
	case cfg.Workers != 0:
		return nil, fmt.Errorf("verify: Workers is meaningless on a coordinator; workers join with Join")
	}
	if cfg.Resume && cfg.CheckpointFile == "" {
		return nil, fmt.Errorf("verify: Resume requires CheckpointFile")
	}
	fp, err := cfg.fingerprint()
	if err != nil {
		return nil, err
	}
	dcfg := dcoord.Config{
		Fingerprint:      fp,
		MaxInterleavings: cfg.MaxInterleavings,
		StopOnFirstError: cfg.StopOnFirstError,
		LeaseTTL:         cfg.LeaseTTL,
		MaxRedeliveries:  cfg.MaxRedeliveries,
		CheckpointPath:   cfg.CheckpointFile,
		CheckpointEvery:  cfg.CheckpointEvery,
		OnProgress:       cfg.OnProgress,
		ProgressEvery:    cfg.ProgressEvery,
	}
	if cfg.Resume {
		ckp, err := dexplore.LoadCheckpoint(cfg.CheckpointFile)
		if err != nil {
			return nil, fmt.Errorf("verify: loading checkpoint: %w", err)
		}
		dcfg.Resume = ckp
	}
	c, err := dcoord.New(dcfg)
	if err != nil {
		return nil, err
	}
	ln, err := c.ListenAndServe(cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{c: c, ln: ln, cfg: cfg}, nil
}

// Addr returns the coordinator's bound listen address (useful with ":0").
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Wait blocks until the exploration completes and returns the merged result.
func (c *Coordinator) Wait() (*Result, error) {
	rep, err := c.c.Wait()
	if err != nil {
		return nil, err
	}
	res := &Result{Report: rep}
	if c.cfg.ArtifactsDir != "" {
		if err := writeArtifacts(c.cfg.ArtifactsDir, res); err != nil {
			return nil, fmt.Errorf("verify: writing artifacts: %w", err)
		}
	}
	return res, nil
}

// Stop drains the cluster gracefully: no new tasks are leased, in-flight
// results are merged, a final checkpoint is written (if configured) and Wait
// returns the partial result. The SIGTERM path.
func (c *Coordinator) Stop() { c.c.Stop() }

// Status returns a live snapshot of the exploration.
func (c *Coordinator) Status() dcoord.Status { return c.c.Status() }

// StatusHandler returns the coordinator's HTTP observability surface:
// /status (JSON) and /metrics (Prometheus text).
func (c *Coordinator) StatusHandler() http.Handler { return c.c.StatusHandler() }

// Worker is the worker side of a distributed verification.
type Worker struct {
	w *dcoord.Worker
}

// Join creates a worker for the coordinator at cfg.Addr, replaying the given
// program. Run blocks until the exploration is done (nil), the worker is
// stopped (nil), or the coordinator rejects or disappears (error). The
// program must be the same workload the coordinator serves — the handshake
// enforces the name and every exploration parameter.
func Join(cfg ClusterConfig, program func(p *mpi.Proc) error) (*Worker, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("verify: Procs must be >= 1, got %d", cfg.Procs)
	}
	if program == nil {
		return nil, fmt.Errorf("verify: nil program")
	}
	if cfg.Workload == "" {
		return nil, fmt.Errorf("verify: distributed verification requires a Workload name")
	}
	fp, err := cfg.fingerprint()
	if err != nil {
		return nil, err
	}
	ecfg, err := cfg.explorerConfig(program)
	if err != nil {
		return nil, err
	}
	w := dcoord.NewWorker(dcoord.WorkerConfig{
		Addr:        cfg.Addr,
		Name:        cfg.WorkerName,
		Slots:       cfg.Slots,
		Fingerprint: fp,
		Explorer:    ecfg,
		Scale:       cfg.Scale,
		Iters:       cfg.Iters,
		OnEvent:     cfg.OnEvent,
	})
	return &Worker{w: w}, nil
}

// Run joins the coordinator and replays tasks until done or stopped.
func (w *Worker) Run() error { return w.w.Run() }

// Stop drains gracefully: in-flight replays finish and deliver their
// results, then Run returns. The SIGTERM path.
func (w *Worker) Stop() { w.w.Stop() }
