package verify_test

import (
	"errors"
	"fmt"

	"dampi/mpi"
	"dampi/verify"
)

// ExampleRun verifies the paper's Figure 3 program: two racing sends into a
// wildcard receive, one of which triggers a bug. DAMPI covers both matches
// and produces a deterministic reproducer for the failing one.
func ExampleRun() {
	program := func(p *mpi.Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			return p.Send(1, 0, mpi.EncodeInt64(22), c)
		case 2:
			return p.Send(1, 0, mpi.EncodeInt64(33), c)
		case 1:
			data, _, err := p.Recv(mpi.AnySource, 0, c)
			if err != nil {
				return err
			}
			if mpi.DecodeInt64(data)[0] == 33 {
				return errors.New("x == 33")
			}
		}
		return nil
	}

	res, err := verify.Run(verify.Config{Procs: 3}, program)
	if err != nil {
		fmt.Println("verify failed:", err)
		return
	}
	fmt.Println("interleavings:", res.Interleavings)
	fmt.Println("bugs found:", len(res.Errors))

	// The reproducer replays the failing interleaving deterministically.
	replay, err := verify.Replay(3, program, res.Errors[0].Decisions)
	if err != nil {
		fmt.Println("replay failed:", err)
		return
	}
	fmt.Println("replay failed again:", replay.Err != nil)
	// Output:
	// interleavings: 2
	// bugs found: 1
	// replay failed again: true
}

// ExampleRun_boundedMixing shows the §III-B2 coverage dial: the same
// master/worker fan-in explored under increasing mixing bounds.
func ExampleRun_boundedMixing() {
	program := func(p *mpi.Proc) error {
		c := p.CommWorld()
		for round := 0; round < 2; round++ {
			if p.Rank() == 0 {
				for i := 1; i < p.Size(); i++ {
					if _, _, err := p.Recv(mpi.AnySource, round, c); err != nil {
						return err
					}
				}
			} else if err := p.Send(0, round, nil, c); err != nil {
				return err
			}
			if err := p.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, k := range []int{0, verify.Unbounded} {
		res, err := verify.Run(verify.Config{Procs: 4, MixingBound: k}, program)
		if err != nil {
			fmt.Println("verify failed:", err)
			return
		}
		if k == verify.Unbounded {
			fmt.Println("unbounded:", res.Interleavings)
		} else {
			fmt.Printf("k=%d: %d\n", k, res.Interleavings)
		}
	}
	// Output:
	// k=0: 7
	// unbounded: 36
}
