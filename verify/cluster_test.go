package verify_test

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"dampi/verify"
)

// TestClusterMatchesLocalRun: a coordinator plus two workers driven through
// the public Serve/Join API produce the same report a local Run does.
func TestClusterMatchesLocalRun(t *testing.T) {
	serial, err := verify.Run(verify.Config{Procs: 3}, racyProgram)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	ccfg := verify.ClusterConfig{
		Config:   verify.Config{Procs: 3},
		Workload: "racy",
		Addr:     "127.0.0.1:0",
	}
	c, err := verify.Serve(ccfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wcfg := ccfg
	wcfg.Addr = c.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wcfg.WorkerName = string(rune('a' + i))
		w, err := verify.Join(wcfg, racyProgram)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	wg.Wait()

	if res.Interleavings != serial.Interleavings || res.Deadlocks != serial.Deadlocks ||
		res.DecisionPoints != serial.DecisionPoints || res.WildcardsAnalyzed != serial.WildcardsAnalyzed {
		t.Errorf("cluster counts differ from serial:\ncluster: %s\nserial:  %s", res.Summary(), serial.Summary())
	}
	if len(res.Errors) != len(serial.Errors) {
		t.Fatalf("cluster found %d errors, serial %d", len(res.Errors), len(serial.Errors))
	}
	lines := func(r *verify.Result) []string {
		var out []string
		for _, e := range r.Errors {
			out = append(out, e.Decisions.String()+": "+e.Err.Error())
		}
		sort.Strings(out)
		return out
	}
	ce, se := lines(res), lines(serial)
	for i := range ce {
		if ce[i] != se[i] {
			t.Errorf("error %d differs:\ncluster: %s\nserial:  %s", i, ce[i], se[i])
		}
	}

	// The status surface reports completion.
	if st := c.Status(); st.State != "done" {
		t.Errorf("state = %q after Wait, want done", st.State)
	}
	srv := httptest.NewServer(c.StatusHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/status after completion: %v (%v)", err, resp)
	}
	resp.Body.Close()
}

// TestServeRejectsLocalOnlyOptions: options whose implementation requires
// running the program in the coordinator process are refused up front.
func TestServeRejectsLocalOnlyOptions(t *testing.T) {
	base := verify.ClusterConfig{Config: verify.Config{Procs: 3}, Workload: "racy", Addr: "127.0.0.1:0"}
	cases := []struct {
		name   string
		mutate func(*verify.ClusterConfig)
		want   string
	}{
		{"leaks", func(c *verify.ClusterConfig) { c.CheckLeaks = true }, "CheckLeaks"},
		{"stats", func(c *verify.ClusterConfig) { c.CollectStats = true }, "CollectStats"},
		{"callback", func(c *verify.ClusterConfig) { c.OnInterleaving = func(*verify.InterleavingResult) {} }, "OnInterleaving"},
		{"workers", func(c *verify.ClusterConfig) { c.Workers = 4 }, "Workers"},
		{"no-workload", func(c *verify.ClusterConfig) { c.Workload = "" }, "Workload"},
		{"resume", func(c *verify.ClusterConfig) { c.Resume = true }, "CheckpointFile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			_, err := verify.Serve(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Serve error = %v, want mention of %s", err, tc.want)
			}
		})
	}
}

// TestJoinValidation: worker-side misconfiguration fails before dialing.
func TestJoinValidation(t *testing.T) {
	good := verify.ClusterConfig{Config: verify.Config{Procs: 3}, Workload: "racy", Addr: "127.0.0.1:1"}
	if _, err := verify.Join(good, nil); err == nil {
		t.Error("nil program accepted")
	}
	bad := good
	bad.Workload = ""
	if _, err := verify.Join(bad, racyProgram); err == nil {
		t.Error("empty workload accepted")
	}
	bad = good
	bad.Procs = 0
	if _, err := verify.Join(bad, racyProgram); err == nil {
		t.Error("Procs=0 accepted")
	}
}
