package verify_test

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dampi/verify"
	"dampi/workloads/matmul"
)

// TestWorkersFindsInjectedBug: the parallel engine behind Config.Workers
// finds the same bug as the serial path and reports a working reproducer.
func TestWorkersFindsInjectedBug(t *testing.T) {
	res, err := verify.Run(verify.Config{Procs: 3, Workers: 4}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Errored() || !errors.Is(res.Errors[0].Err, errInjected) {
		t.Fatalf("bug not found: %+v", res.Errors)
	}
	if res.Interleavings != 2 {
		t.Errorf("interleavings = %d, want 2", res.Interleavings)
	}
	rr, err := verify.Replay(3, racyProgram, res.Errors[0].Decisions)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rr.Err, errInjected) {
		t.Errorf("reproducer replayed to %v, want the injected bug", rr.Err)
	}
}

// TestWorkersMatchesSerialCounts: serial and parallel verification agree on
// the aggregate coverage counts (full set equality is proven in
// internal/dexplore with a memoized runner; counts are stable either way).
func TestWorkersMatchesSerialCounts(t *testing.T) {
	prog := matmul.Program(matmul.Config{})
	serial, err := verify.Run(verify.Config{Procs: 6}, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		par, err := verify.Run(verify.Config{Procs: 6, Workers: workers}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if par.Interleavings != serial.Interleavings {
			t.Errorf("workers=%d: interleavings = %d, serial %d", workers, par.Interleavings, serial.Interleavings)
		}
		if par.WildcardsAnalyzed != serial.WildcardsAnalyzed {
			t.Errorf("workers=%d: R* = %d, serial %d", workers, par.WildcardsAnalyzed, serial.WildcardsAnalyzed)
		}
		if par.Deadlocks != serial.Deadlocks || len(par.Errors) != len(serial.Errors) {
			t.Errorf("workers=%d: deadlocks/errors diverge from serial", workers)
		}
	}
}

// TestCheckpointResumeViaPublicAPI drives the full satellite workflow
// through verify.Config: cap-limited run with a checkpoint, then Resume
// finishes the remainder.
func TestCheckpointResumeViaPublicAPI(t *testing.T) {
	prog := matmul.Program(matmul.Config{})
	full, err := verify.Run(verify.Config{Procs: 6, Workers: 2}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if full.Interleavings <= 10 {
		t.Fatalf("fixture too small: %d interleavings", full.Interleavings)
	}

	path := filepath.Join(t.TempDir(), "ckp.json")
	part, err := verify.Run(verify.Config{
		Procs:            6,
		Workers:          2,
		MaxInterleavings: 10,
		CheckpointFile:   path,
		CheckpointEvery:  2,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if part.Interleavings != 10 || !part.Capped {
		t.Fatalf("partial run: %d interleavings, capped=%v", part.Interleavings, part.Capped)
	}

	res, err := verify.Run(verify.Config{
		Procs:          6,
		Workers:        2,
		CheckpointFile: path,
		Resume:         true,
		CheckLeaks:     true, // must be skipped on resume, not crash
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interleavings != full.Interleavings {
		t.Errorf("resumed total = %d, uninterrupted %d", res.Interleavings, full.Interleavings)
	}
	if res.Leaks != nil {
		t.Error("leak report produced on resume (no canonical first run)")
	}
	if res.WildcardsAnalyzed != full.WildcardsAnalyzed {
		t.Errorf("resumed R* = %d, want %d", res.WildcardsAnalyzed, full.WildcardsAnalyzed)
	}
}

// TestResumeValidation: Resume demands a checkpoint file and the parallel
// engine.
func TestResumeValidation(t *testing.T) {
	prog := matmul.Program(matmul.Config{})
	if _, err := verify.Run(verify.Config{Procs: 4, Workers: 2, Resume: true}, prog); err == nil {
		t.Error("Resume without CheckpointFile accepted")
	}
	if _, err := verify.Run(verify.Config{Procs: 4, CheckpointFile: "x.json", Resume: true}, prog); err == nil {
		t.Error("Resume without Workers accepted")
	}
}

// TestOnProgressViaPublicAPI: Config.OnProgress delivers throughput
// snapshots from the parallel engine.
func TestOnProgressViaPublicAPI(t *testing.T) {
	var mu sync.Mutex
	got := 0
	_, err := verify.Run(verify.Config{
		Procs:         8,
		Workers:       2,
		ProgressEvery: time.Millisecond,
		OnProgress: func(p verify.Progress) {
			mu.Lock()
			got++
			mu.Unlock()
		},
	}, matmul.Program(matmul.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got == 0 {
		t.Error("no progress snapshots delivered")
	}
}
