package verify_test

import (
	"path/filepath"
	"testing"

	"dampi/verify"
	"dampi/workloads"
	"dampi/workloads/fanin"
)

// faninSrc is the fanin workload's source directory, relative to this
// package.
var faninSrc = filepath.Join("..", "workloads", "fanin")

// TestStaticPruneFaninStrictReduction is the tentpole's acceptance check:
// the fanin workload has a statically deterministic wildcard, so a pruned
// exploration at k=0 covers strictly fewer interleavings than the unpruned
// one, with an identical verdict and the exact counting identity
// unpruned = pruned + StaticPruned.
func TestStaticPruneFaninStrictReduction(t *testing.T) {
	hints, notes, err := verify.StaticHints(faninSrc, fanin.MinProcs)
	if err != nil {
		t.Fatalf("StaticHints: %v", err)
	}
	if hints == nil {
		t.Fatalf("no hints derived from %s (notes: %v)", faninSrc, notes)
	}

	prog := fanin.Program(fanin.Config{})
	un, err := verify.Run(verify.Config{Procs: fanin.MinProcs, MixingBound: 0}, prog)
	if err != nil {
		t.Fatalf("unpruned Run: %v", err)
	}
	pr, err := verify.Run(verify.Config{Procs: fanin.MinProcs, MixingBound: 0, PruneHints: hints}, prog)
	if err != nil {
		t.Fatalf("pruned Run: %v", err)
	}

	if un.Errored() || pr.Errored() {
		t.Fatalf("fanin errored: unpruned=%v pruned=%v", un.Errors, pr.Errors)
	}
	if un.Deadlocks != 0 || pr.Deadlocks != 0 {
		t.Fatalf("fanin deadlocked: unpruned=%d pruned=%d", un.Deadlocks, pr.Deadlocks)
	}
	if pr.PruneDisabled || len(pr.PruneViolations) != 0 {
		t.Fatalf("soundness cross-check tripped on correct hints: disabled=%v violations=%v",
			pr.PruneDisabled, pr.PruneViolations)
	}
	if pr.StaticPruned == 0 {
		t.Fatal("pruned run skipped no branches; the static singleton was not acted on")
	}
	if pr.Interleavings >= un.Interleavings {
		t.Errorf("pruned explored %d interleavings, want strictly fewer than unpruned %d",
			pr.Interleavings, un.Interleavings)
	}
	if un.Interleavings != pr.Interleavings+pr.StaticPruned {
		t.Errorf("counting identity broken at k=0: unpruned %d != pruned %d + StaticPruned %d",
			un.Interleavings, pr.Interleavings, pr.StaticPruned)
	}
}

// TestStaticPruneWrongHintsDisable manufactures a wrong singleton for
// fanin's wildcard: the observed match (rank 1) is outside the claimed set,
// so the runtime cross-check must record a violation, disable pruning
// run-wide, and leave coverage identical to the unpruned exploration.
func TestStaticPruneWrongHintsDisable(t *testing.T) {
	// fanin's statically deterministic wildcard is rank 0's tag-2 control
	// receive; its true sender is rank 1. Claim rank 2 instead.
	wrong := verify.NewPruneHints(map[verify.PruneHintKey][]int{
		{Rank: 0, Tag: 2, Probe: false}: {2},
	})
	prog := fanin.Program(fanin.Config{})
	un, err := verify.Run(verify.Config{Procs: fanin.MinProcs, MixingBound: 0}, prog)
	if err != nil {
		t.Fatalf("unpruned Run: %v", err)
	}
	pr, err := verify.Run(verify.Config{Procs: fanin.MinProcs, MixingBound: 0, PruneHints: wrong}, prog)
	if err != nil {
		t.Fatalf("pruned Run: %v", err)
	}
	if !pr.PruneDisabled {
		t.Error("wrong hints did not disable pruning")
	}
	if len(pr.PruneViolations) == 0 {
		t.Error("wrong hints produced no violation record")
	}
	if pr.StaticPruned != 0 {
		t.Errorf("wrong hints still pruned %d branches", pr.StaticPruned)
	}
	if pr.Interleavings != un.Interleavings {
		t.Errorf("disabled pruning changed coverage: %d vs unpruned %d",
			pr.Interleavings, un.Interleavings)
	}
	if pr.Errored() != un.Errored() {
		t.Errorf("disabled pruning changed the verdict: errored %v vs %v", pr.Errored(), un.Errored())
	}
}

// workloadSrcDir maps a registered workload to the source directory its
// hints would be derived from (what `dampi -static-prune` would be pointed
// at). Suites live in shared directories with several program roots, where
// StaticHints correctly degrades to nil hints.
func workloadSrcDir(w *workloads.Workload) string {
	switch w.Suite {
	case "nas":
		return filepath.Join("..", "workloads", "nas")
	case "spec":
		return filepath.Join("..", "workloads", "spec")
	}
	switch w.Name {
	case "ParMETIS-3.1":
		return filepath.Join("..", "workloads", "parmetis")
	default:
		return filepath.Join("..", "workloads", w.Name)
	}
}

// TestStaticPruneEquivalentOnAllWorkloads is the repo-wide soundness sweep:
// for every registered workload, deriving hints from its sources and
// verifying with -static-prune semantics must yield a verdict identical to
// the unpruned exploration (and the k=0 counting identity when neither run
// was capped).
func TestStaticPruneEquivalentOnAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("explores every workload twice; skipped in -short mode")
	}
	const cap = 200
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			procs := w.MinProcs
			if procs < 4 {
				procs = 4
			}
			hints, notes, err := verify.StaticHints(workloadSrcDir(w), procs)
			if err != nil {
				t.Fatalf("StaticHints: %v", err)
			}
			if hints == nil {
				t.Logf("no hints (%d notes); pruned run degenerates to unpruned", len(notes))
			}
			prog := w.Program(workloads.Params{Procs: procs})
			un, err := verify.Run(verify.Config{
				Procs: procs, MixingBound: 0, MaxInterleavings: cap,
			}, prog)
			if err != nil {
				t.Fatalf("unpruned Run: %v", err)
			}
			pr, err := verify.Run(verify.Config{
				Procs: procs, MixingBound: 0, MaxInterleavings: cap, PruneHints: hints,
			}, prog)
			if err != nil {
				t.Fatalf("pruned Run: %v", err)
			}
			if pr.PruneDisabled {
				t.Errorf("static hints disabled at runtime — the static model disagreed with an execution: %v",
					pr.PruneViolations)
			}
			if pr.Errored() != un.Errored() || len(pr.Errors) != len(un.Errors) {
				t.Errorf("verdict differs: pruned errors=%d, unpruned errors=%d", len(pr.Errors), len(un.Errors))
			}
			if pr.Deadlocks != un.Deadlocks {
				t.Errorf("deadlocks differ: pruned=%d unpruned=%d", pr.Deadlocks, un.Deadlocks)
			}
			if un.Capped || pr.Capped {
				t.Logf("capped at %d interleavings; skipping the counting identity", cap)
				return
			}
			if un.Interleavings != pr.Interleavings+pr.StaticPruned {
				t.Errorf("counting identity broken at k=0: unpruned %d != pruned %d + StaticPruned %d",
					un.Interleavings, pr.Interleavings, pr.StaticPruned)
			}
		})
	}
}
