package verify_test

import (
	"errors"
	"path/filepath"
	"testing"

	"dampi/mpi"
	"dampi/verify"
	"dampi/workloads/matmul"
)

var errInjected = errors.New("injected bug")

func racyProgram(p *mpi.Proc) error {
	c := p.CommWorld()
	switch p.Rank() {
	case 0:
		return p.Send(1, 0, mpi.EncodeInt64(1), c)
	case 2:
		return p.Send(1, 0, mpi.EncodeInt64(2), c)
	case 1:
		data, _, err := p.Recv(mpi.AnySource, 0, c)
		if err != nil {
			return err
		}
		if mpi.DecodeInt64(data)[0] == 2 {
			return errInjected
		}
	}
	return nil
}

func TestRunFindsInjectedBug(t *testing.T) {
	res, err := verify.Run(verify.Config{Procs: 3}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Errored() || !errors.Is(res.Errors[0].Err, errInjected) {
		t.Fatalf("bug not found: %+v", res.Errors)
	}
	if res.Interleavings != 2 {
		t.Errorf("interleavings = %d, want 2", res.Interleavings)
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := verify.Run(verify.Config{Procs: 0}, racyProgram); err == nil {
		t.Error("Procs=0 accepted")
	}
	if _, err := verify.Run(verify.Config{Procs: 2}, nil); err == nil {
		t.Error("nil program accepted")
	}
}

func TestRunMatmulFullCoverage(t *testing.T) {
	res, err := verify.Run(verify.Config{
		Procs:            3,
		MixingBound:      verify.Unbounded,
		CheckLeaks:       true,
		CollectStats:     true,
		MaxInterleavings: 100,
	}, matmul.Program(matmul.Config{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errored() {
		t.Fatalf("matmul failed verification: %v (%v)", res.Errors[0], res.Errors[0].Err)
	}
	if res.WildcardsAnalyzed != 4 { // Rows = 2*(procs-1)
		t.Errorf("R* = %d, want 4", res.WildcardsAnalyzed)
	}
	if res.Leaks.HasCommLeak() || res.Leaks.HasRequestLeak() {
		t.Errorf("unexpected leaks: %v", res.Leaks)
	}
	if res.Stats.Totals().All == 0 {
		t.Error("no ops recorded")
	}
	if res.Interleavings < 2 {
		t.Errorf("interleavings = %d, want > 1", res.Interleavings)
	}
}

func TestLoopMarkersSuppressExploration(t *testing.T) {
	marked := matmul.Program(matmul.Config{MarkLoop: true})
	res, err := verify.Run(verify.Config{Procs: 4, MixingBound: verify.Unbounded}, marked)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Interleavings != 1 {
		t.Errorf("interleavings = %d, want 1 under loop abstraction", res.Interleavings)
	}
	if res.Errored() {
		t.Errorf("errors: %v", res.Errors)
	}
}

func TestMarkLoopHelpersOutsideVerifier(t *testing.T) {
	// The markers are plain Pcontrol calls: harmless without a verifier.
	w := mpi.NewWorld(mpi.Config{Procs: 1})
	err := w.Run(func(p *mpi.Proc) error {
		verify.MarkLoopBegin(p)
		verify.MarkLoopEnd(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorClockMode(t *testing.T) {
	res, err := verify.Run(verify.Config{Procs: 3, Clock: verify.VectorClock}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Errored() {
		t.Fatal("vector mode missed the bug")
	}
}

func TestOnInterleavingCallback(t *testing.T) {
	var seen int
	_, err := verify.Run(verify.Config{
		Procs:          3,
		OnInterleaving: func(res *verify.InterleavingResult) { seen++ },
	}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen != 2 {
		t.Errorf("callback fired %d times, want 2", seen)
	}
}

func TestArtifactsDir(t *testing.T) {
	dir := t.TempDir()
	res, err := verify.Run(verify.Config{Procs: 3, ArtifactsDir: dir}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Errored() {
		t.Fatal("setup: bug not found")
	}
	// The trace artifact exists and parses.
	trace, err := verify.LoadTrace(filepath.Join(dir, "potential_matches.json"))
	if err != nil {
		t.Fatalf("trace artifact: %v", err)
	}
	if len(trace.Epochs) == 0 {
		t.Error("empty trace artifact")
	}
	// The reproducer artifact replays the bug.
	d, err := verify.LoadDecisions(filepath.Join(dir, "error_0.decisions.json"))
	if err != nil {
		t.Fatalf("decisions artifact: %v", err)
	}
	replay, err := verify.Replay(3, racyProgram, d)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !errors.Is(replay.Err, errInjected) {
		t.Fatalf("artifact replay diverged: %v", replay.Err)
	}
}

func TestDualClockAndInbandViaPublicAPI(t *testing.T) {
	// The §V dual-clock extension and the in-band transport compose.
	res, err := verify.Run(verify.Config{
		Procs:     3,
		DualClock: true,
		Transport: verify.Inband,
	}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Errored() || !errors.Is(res.Errors[0].Err, errInjected) {
		t.Fatalf("bug not found under dual+inband: %+v", res.Errors)
	}
	if res.Interleavings != 2 {
		t.Errorf("interleavings = %d, want 2", res.Interleavings)
	}
}

func TestAutoLoopThresholdViaPublicAPI(t *testing.T) {
	// Repeating same-signature fan-in rounds get auto-abstracted.
	prog := func(p *mpi.Proc) error {
		c := p.CommWorld()
		for r := 0; r < 5; r++ {
			if p.Rank() == 0 {
				for i := 1; i < 3; i++ {
					if _, _, err := p.Recv(mpi.AnySource, 4, c); err != nil {
						return err
					}
				}
			} else if err := p.Send(0, 4, nil, c); err != nil {
				return err
			}
			if err := p.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	}
	full, err := verify.Run(verify.Config{Procs: 3, MaxInterleavings: 2000}, prog)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := verify.Run(verify.Config{Procs: 3, AutoLoopThreshold: 2, MaxInterleavings: 2000}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Interleavings >= full.Interleavings {
		t.Errorf("auto loop detection did not help: %d vs %d", auto.Interleavings, full.Interleavings)
	}
	if auto.AutoAbstracted == 0 {
		t.Error("AutoAbstracted = 0")
	}
}
