// Package verify is the public entry point to DAMPI: scalable, distributed
// dynamic formal verification of MPI programs over the space of
// non-determinism (wildcard receives and probes), as described in "A Scalable
// and Distributed Dynamic Formal Verifier for MPI Programs" (SC 2010).
//
// A verification runs the program once in self-discovery mode, computes every
// potential alternate match of every wildcard receive using piggybacked
// Lamport clocks, and then replays the program depth-first, forcing each
// alternate match in turn, until the interleaving space — optionally bounded
// by the bounded-mixing and loop-iteration-abstraction heuristics — is
// covered. Deadlocks, program errors, resource leaks and the paper's §V
// unsafe pattern are reported with deterministic reproducers.
//
//	result, err := verify.Run(verify.Config{Procs: 4}, program)
//	if result.Errored() { ... result.Errors[0].Decisions reproduces it ... }
package verify

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dampi/internal/core"
	"dampi/internal/dexplore"
	"dampi/internal/leak"
	"dampi/internal/sample"
	"dampi/internal/trace"
	"dampi/mpi"
)

// ClockMode selects causality-tracking precision.
type ClockMode = core.ClockMode

// Clock modes (see the paper's §II-C and §II-F).
const (
	// Lamport is the scalable default.
	Lamport = core.Lamport
	// VectorClock is precise but costs O(procs) piggyback state.
	VectorClock = core.VectorClock
)

// Unbounded disables bounded mixing: full depth-first coverage.
const Unbounded = core.Unbounded

// Transport selects the piggyback mechanism (paper §II-D).
type Transport = core.Transport

// Piggyback transports: Separate (the paper's shadow-communicator scheme,
// default) or Inband payload packing.
const (
	Separate = core.Separate
	Inband   = core.Inband
)

// InterleavingResult describes one explored interleaving (with its
// reproducing decision set).
type InterleavingResult = core.InterleavingResult

// Decisions is the epoch-decisions artifact that reproduces an interleaving.
type Decisions = core.Decisions

// EpochID identifies a wildcard decision point: (rank, Lamport clock).
type EpochID = core.EpochID

// UnsafeReport is a §V omission-pattern alert.
type UnsafeReport = core.UnsafeReport

// RunTrace is one run's wildcard-epoch log (the Potential Matches artifact);
// Result.FirstTrace holds the canonical run's. Save/LoadTrace round-trip it.
type RunTrace = core.RunTrace

// LoadDecisions reads an Epoch Decisions file saved with Decisions.Save.
func LoadDecisions(path string) (*Decisions, error) { return core.LoadDecisions(path) }

// LoadTrace reads a Potential Matches file saved with RunTrace.Save (or via
// Config.ArtifactsDir).
func LoadTrace(path string) (*RunTrace, error) { return core.LoadTrace(path) }

// DecisionsFromTrace builds the decisions that replay a traced run.
func DecisionsFromTrace(t *RunTrace) *Decisions { return core.DecisionsFromTrace(t) }

// Config controls a verification.
type Config struct {
	// Procs is the number of MPI ranks to run the program with.
	Procs int
	// Clock selects Lamport (default) or vector clocks.
	Clock ClockMode
	// DualClock enables the paper's §V dual-Lamport-clock extension: a
	// second, lagging transmit clock closes the omission pattern where a
	// pending wildcard receive's clock escapes through a send or collective
	// before its Wait/Test (Fig. 10). Sketched as future work in the paper;
	// implemented here. Lamport mode only.
	DualClock bool
	// Transport selects the piggyback mechanism: Separate (default) or
	// Inband payload packing.
	Transport Transport
	// MixingBound is the bounded-mixing k (default Unbounded = full
	// coverage). k=0 explores each wildcard epoch's alternates in isolation;
	// larger k allows k further decision levels below each flip to mix.
	MixingBound int
	// AutoLoopThreshold enables automatic loop detection (the paper's §VI
	// future work): after this many consecutive same-signature wildcard
	// epochs on a rank, further repetitions are treated like Pcontrol-
	// marked loop iterations and not explored. 0 disables.
	AutoLoopThreshold int
	// MaxInterleavings caps the number of replays; 0 means unlimited.
	MaxInterleavings int
	// StopOnFirstError ends the search at the first failing interleaving.
	StopOnFirstError bool
	// CheckLeaks enables the communicator/request leak checks (Table II).
	CheckLeaks bool
	// CollectStats enables MPI operation statistics (Table I categories).
	CollectStats bool
	// OnInterleaving, if non-nil, observes every explored interleaving. With
	// Workers > 0 the callback is serialized but results arrive in
	// completion order, which depends on worker scheduling.
	OnInterleaving func(res *InterleavingResult)
	// ArtifactsDir, if non-empty, receives the run's file artifacts in the
	// paper's workflow shape: potential_matches.json (the first run's epoch
	// log) and error_<n>.decisions.json (one Epoch Decisions reproducer per
	// failing interleaving, replayable with Replay or `dampi -replay`).
	ArtifactsDir string
	// Workers selects the parallel exploration engine: the number of
	// concurrent replay workers, each running guided replays in its own
	// isolated MPI world. 0 runs the serial legacy explorer. The parallel
	// engine covers exactly the same interleaving set and reports the same
	// errors and counts; only result arrival order differs.
	Workers int
	// CheckpointFile, if non-empty (parallel engine only), persists the
	// exploration frontier every CheckpointEvery replays and at the end, so
	// a killed verification can continue with Resume.
	CheckpointFile string
	// CheckpointEvery is the number of completed replays between frontier
	// checkpoint writes (default 32).
	CheckpointEvery int
	// Resume loads CheckpointFile and continues a previous exploration
	// instead of starting from the initial self-discovery run. Leak checks
	// and statistics are skipped on resume: their canonical first run
	// already happened in the original exploration.
	Resume bool
	// OnProgress, if non-nil (parallel engine only), receives a live
	// throughput snapshot every ProgressEvery (default 1s).
	OnProgress func(p Progress)
	// ProgressEvery is the OnProgress period.
	ProgressEvery time.Duration
	// PruneHints is an optional static prune-hint table (usually built with
	// StaticHints from the program's source): wildcard decision points whose
	// statically derived sender set is a singleton are not branched on.
	// Every observed match is cross-checked against the table; a mismatch
	// disables pruning for the rest of the exploration and is surfaced via
	// Result.PruneViolations. Nil verifies without static pruning.
	PruneHints *PruneHints
	// Mode selects the exploration mode: ModeExhaustive ("" or "exhaustive",
	// the default full DFS) or ModeSample ("sample", seeded schedule
	// sampling: exhaustive below SampleDepth, seeded walks beyond).
	Mode string
	// ChoicePoints records and replays Waitany/Waitsome/Testany completion
	// indexes and Iprobe found/not-found outcomes as first-class decision
	// points, enlarging the explored space beyond wildcard sources. Off by
	// default (existing verdicts and reports are byte-identical); forced on
	// in sample mode, whose walks need the enlarged space.
	ChoicePoints bool
	// SampleStrategy selects the sampling policy in sample mode: "random"
	// (default, uniform random walk) or "pct" (PCT-style priority schedules).
	SampleStrategy string
	// Samples is the sampled-schedule budget in sample mode (default 1).
	Samples int
	// Seed derives the sampled schedules; the same seed always reproduces
	// the identical schedule set and report.
	Seed uint64
	// SampleDepth is the flip-tree depth below which sample mode still
	// expands exhaustively ("exhaustive below depth d, sampled beyond").
	// 0 samples from the root.
	SampleDepth int
}

// Exploration modes for Config.Mode.
const (
	ModeExhaustive = "exhaustive"
	ModeSample     = "sample"
)

// configureSampling applies the Mode/ChoicePoints/sampling fields of cfg to
// an explorer configuration: choice-point recording, the depth bound, and
// (in sample mode) the seeded sampler. Both the local engines and the
// cluster layer derive their configurations through this one function.
func (cfg *Config) configureSampling(ecfg *core.ExplorerConfig) error {
	ecfg.ChoicePoints = cfg.ChoicePoints
	ecfg.SampleDepth = cfg.SampleDepth
	switch cfg.Mode {
	case "", ModeExhaustive:
		return nil
	case ModeSample:
	default:
		return fmt.Errorf("verify: unknown Mode %q (want %q or %q)", cfg.Mode, ModeExhaustive, ModeSample)
	}
	// Sampling walks flip completion and probe outcomes too; without choice
	// points the sampled space would silently shrink to wildcard sources.
	ecfg.ChoicePoints = true
	strat, err := sample.ParseStrategy(cfg.SampleStrategy)
	if err != nil {
		return err
	}
	ecfg.Sampler = sample.New(sample.Config{
		Strategy: strat,
		Samples:  cfg.Samples,
		Seed:     cfg.Seed,
		Procs:    cfg.Procs,
	})
	return nil
}

// PruneHints is a static prune-hint table shared by all replay workers.
type PruneHints = core.PruneHints

// PruneHintKey identifies one wildcard decision-point class in a hint table.
type PruneHintKey = core.PruneHintKey

// NewPruneHints builds a hint table from sender sets keyed by decision
// point; see core.NewPruneHints.
func NewPruneHints(sets map[PruneHintKey][]int) *PruneHints { return core.NewPruneHints(sets) }

// Progress is a live exploration throughput snapshot (parallel engine).
type Progress = dexplore.Progress

// Result is the outcome of a verification.
type Result struct {
	// Report is the coverage report: interleavings explored, errors with
	// reproducers, deadlocks, R*, §V alerts.
	*core.Report
	// Leaks is the leak report of the first (canonical) run; nil unless
	// CheckLeaks was set.
	Leaks *leak.Report
	// Stats holds operation statistics of the first run; nil unless
	// CollectStats was set.
	Stats *trace.Stats

	leakTracker *leak.Tracker
}

// Summary renders a one-line human-readable result.
func (r *Result) Summary() string {
	s := fmt.Sprintf("interleavings=%d errors=%d deadlocks=%d wildcards=%d",
		r.Interleavings, len(r.Errors), r.Deadlocks, r.WildcardsAnalyzed)
	if r.Capped {
		s += " (capped)"
	}
	if r.Sampled > 0 {
		s += fmt.Sprintf(" sampled=%d distinct=%d", r.Sampled, r.SampledDistinct)
	}
	if r.StaticPruned > 0 || r.PruneDisabled {
		s += fmt.Sprintf(" pruned(static)=%d", r.StaticPruned)
	}
	if r.PruneDisabled {
		s += " (static hints disabled: violation observed)"
	}
	if r.Leaks != nil {
		s += fmt.Sprintf(" c-leak=%v r-leak=%v", r.Leaks.HasCommLeak(), r.Leaks.HasRequestLeak())
	}
	if len(r.Unsafe) > 0 {
		s += fmt.Sprintf(" unsafe-patterns=%d", len(r.Unsafe))
	}
	return s
}

// Run verifies program over the space of MPI non-determinism.
func Run(cfg Config, program func(p *mpi.Proc) error) (*Result, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("verify: Procs must be >= 1, got %d", cfg.Procs)
	}
	if program == nil {
		return nil, fmt.Errorf("verify: nil program")
	}
	if cfg.Resume && cfg.CheckpointFile == "" {
		return nil, fmt.Errorf("verify: Resume requires CheckpointFile")
	}
	if cfg.Resume && cfg.Workers < 1 {
		return nil, fmt.Errorf("verify: Resume requires the parallel engine (Workers >= 1)")
	}
	res := &Result{}
	// Leak and statistics collection instrument the canonical (first) run
	// only, matching the paper's single-run overhead and local-check
	// methodology. On resume that run already happened in the original
	// exploration, so the hooks stay off. The mutex makes the first-run claim
	// safe under the parallel engine (whose root run happens before any
	// worker starts, but the guard costs nothing).
	var firstMu sync.Mutex
	firstRun := !cfg.Resume
	extra := func() []*mpi.Hooks {
		firstMu.Lock()
		defer firstMu.Unlock()
		var hs []*mpi.Hooks
		if firstRun {
			if cfg.CheckLeaks {
				tr := leak.NewTracker()
				hs = append(hs, tr.Hooks())
				res.leakTracker = tr
			}
			if cfg.CollectStats {
				res.Stats = trace.NewStats(cfg.Procs)
				hs = append(hs, res.Stats.Hooks())
			}
			firstRun = false
		}
		return hs
	}
	ecfg := core.ExplorerConfig{
		Procs:             cfg.Procs,
		Program:           program,
		Clock:             cfg.Clock,
		DualClock:         cfg.DualClock,
		Transport:         cfg.Transport,
		AutoLoopThreshold: cfg.AutoLoopThreshold,
		MixingBound:       cfg.MixingBound,
		MaxInterleavings:  cfg.MaxInterleavings,
		StopOnFirstError:  cfg.StopOnFirstError,
		PruneHints:        cfg.PruneHints,
		ExtraHooks:        extra,
		OnInterleaving:    cfg.OnInterleaving,
	}
	if err := cfg.configureSampling(&ecfg); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if ecfg.Sampler != nil && workers < 1 {
		// Sampling lives at the task-expansion seam; the legacy serial
		// explorer predates it, so serial sample runs route through the
		// parallel engine with one worker (same determinism, same report).
		workers = 1
	}
	var rep *core.Report
	var err error
	if workers > 0 {
		dcfg := dexplore.Config{
			Explorer:        ecfg,
			Workers:         workers,
			CheckpointPath:  cfg.CheckpointFile,
			CheckpointEvery: cfg.CheckpointEvery,
			OnProgress:      cfg.OnProgress,
			ProgressEvery:   cfg.ProgressEvery,
		}
		if cfg.Resume {
			ckp, lerr := dexplore.LoadCheckpoint(cfg.CheckpointFile)
			if lerr != nil {
				return nil, fmt.Errorf("verify: loading checkpoint: %w", lerr)
			}
			dcfg.Resume = ckp
		}
		rep, err = dexplore.New(dcfg).Explore()
	} else {
		rep, err = core.NewExplorer(ecfg).Explore()
	}
	if err != nil {
		return nil, err
	}
	res.Report = rep
	if res.leakTracker != nil {
		res.Leaks = res.leakTracker.Report()
	}
	if cfg.ArtifactsDir != "" {
		if err := writeArtifacts(cfg.ArtifactsDir, res); err != nil {
			return nil, fmt.Errorf("verify: writing artifacts: %w", err)
		}
	}
	return res, nil
}

// writeArtifacts dumps the potential-matches trace and per-error reproducers.
func writeArtifacts(dir string, res *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if res.FirstTrace != nil {
		if err := res.FirstTrace.Save(filepath.Join(dir, "potential_matches.json")); err != nil {
			return err
		}
	}
	for i, e := range res.Errors {
		name := fmt.Sprintf("error_%d.decisions.json", i)
		if err := e.Decisions.Save(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// MarkLoopBegin marks the start of a loop whose wildcard matches should not
// be explored (loop iteration abstraction, §III-B1). The application inserts
// these around fixed-pattern loops, like MPI_Pcontrol in the paper.
func MarkLoopBegin(p *mpi.Proc) { p.Pcontrol(core.PcontrolLoopLevel, core.LoopBegin) }

// MarkLoopEnd marks the end of a loop opened by MarkLoopBegin.
func MarkLoopEnd(p *mpi.Proc) { p.Pcontrol(core.PcontrolLoopLevel, core.LoopEnd) }

// Replay runs program once with the given epoch decisions enforced — the
// deterministic replay of a previously discovered interleaving (e.g. an
// error reproducer from Result.Errors).
func Replay(procs int, program func(p *mpi.Proc) error, d *Decisions) (*InterleavingResult, error) {
	if procs < 1 {
		return nil, fmt.Errorf("verify: Replay procs must be >= 1, got %d", procs)
	}
	if program == nil {
		return nil, fmt.Errorf("verify: nil program")
	}
	_, res, err := core.Replay(core.ExplorerConfig{Procs: procs, Program: program}, d)
	return res, err
}

// ReplayChoicePoints replays one decision vector with the enlarged
// choice-point space enabled: reproducers recorded by -choice-points or
// schedule-sampling runs encode Waitany/Testany completion indexes and
// Iprobe outcome suppressions, and those decisions only re-apply when the
// replaying tool tracks the same epochs. Plain Replay would silently take
// the natural outcomes and report the buggy schedule as clean.
func ReplayChoicePoints(procs int, program func(p *mpi.Proc) error, d *Decisions) (*InterleavingResult, error) {
	if procs < 1 {
		return nil, fmt.Errorf("verify: Replay procs must be >= 1, got %d", procs)
	}
	if program == nil {
		return nil, fmt.Errorf("verify: nil program")
	}
	_, res, err := core.Replay(core.ExplorerConfig{Procs: procs, Program: program, ChoicePoints: true}, d)
	return res, err
}
