// Static prune hints: the bridge from the static communication-graph
// analysis (internal/commgraph, extracted by internal/mpilint) to the
// dynamic explorer. StaticHints analyzes the program's source, derives the
// statically feasible sender set of every wildcard decision point at the
// configured world size, and packages the singletons the explorer may act
// on into a Config.PruneHints table.
//
// The hint sets are payload-type-refined — finer than the dynamic matcher,
// which ignores payload types — so pruning on them is a heuristic, not a
// proof. The explorer therefore cross-checks every observed match against
// the table at runtime and falls back to full branching (surfacing the
// violation) the moment the static model disagrees with an execution.
package verify

import (
	"fmt"

	"dampi/internal/commgraph"
	"dampi/internal/mpilint"
)

// StaticHints statically analyzes the Go package or file at path, locates
// its program root (a function of the exact shape func(p *mpi.Proc) error),
// and derives prune hints for a verification with the given world size.
//
// The returned notes explain, in order, every reason hint coverage was
// reduced (incomplete summaries, unresolvable wildcard tags). When no hints
// can be derived — no root, multiple roots (which one will be verified is
// unknowable statically), or an incomplete summary — the hint table is nil
// and the notes say why; verifying with nil hints is always safe.
func StaticHints(path string, procs int) (*PruneHints, []string, error) {
	if procs < 1 {
		return nil, nil, fmt.Errorf("verify: StaticHints procs must be >= 1, got %d", procs)
	}
	sums, err := mpilint.ProgramSummaries([]string{path}, mpilint.Options{})
	if err != nil {
		return nil, nil, err
	}
	var complete []*commgraph.Summary
	var notes []string
	for _, s := range sums {
		if s.Complete {
			complete = append(complete, s)
		} else {
			notes = append(notes, fmt.Sprintf("%s (%s:%d): summary incomplete: not used for hints", s.Name, s.File, s.Line))
			notes = append(notes, s.Notes...)
		}
	}
	switch len(complete) {
	case 0:
		if len(sums) == 0 {
			notes = append(notes, "no program root (func(p *mpi.Proc) error) found; no hints")
		} else {
			notes = append(notes, "no complete program summary; no hints")
		}
		return nil, notes, nil
	case 1:
	default:
		notes = append(notes, fmt.Sprintf("%d program roots found; cannot tell which will run, no hints", len(complete)))
		return nil, notes, nil
	}
	entries, hnotes := commgraph.Hints(complete[0], procs)
	notes = append(notes, hnotes...)
	sets := make(map[PruneHintKey][]int, len(entries))
	for _, e := range entries {
		sets[PruneHintKey{Rank: e.Key.Rank, Tag: e.Key.Tag, Probe: e.Key.Probe}] = e.Senders
	}
	return NewPruneHints(sets), notes, nil
}
