module dampi

go 1.22
