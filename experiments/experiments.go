// Package experiments regenerates every table and figure of the paper's
// evaluation (§III): Figure 5 (ParMETIS: DAMPI vs ISP), Table I (ParMETIS
// operation statistics), Table II (DAMPI overhead and local checks on the
// benchmark suite), Figure 6 (matmul: time to explore interleavings),
// Figure 8 (matmul under bounded mixing) and Figure 9 (ADLB under bounded
// mixing). The cmd/experiments binary prints them; the repository-root
// benchmarks time them.
//
// Absolute numbers differ from the paper — the substrate is an in-process
// simulator, not an 800-node InfiniBand cluster — but each experiment
// preserves the paper's shape: who wins, how costs grow with scale, and how
// the bounding heuristics trade coverage for tractability.
package experiments

import (
	"fmt"
	"time"

	"dampi/internal/isp"
	"dampi/internal/trace"
	"dampi/mpi"
	"dampi/verify"
	"dampi/workloads"
	"dampi/workloads/adlb"
	"dampi/workloads/matmul"
	"dampi/workloads/parmetis"
)

// Fig5Row is one point of Figure 5: wall-clock time to verify the (fully
// deterministic) ParMETIS proxy under each tool.
type Fig5Row struct {
	Procs  int
	Native time.Duration
	DAMPI  time.Duration
	ISP    time.Duration
}

// Fig5 runs the ParMETIS proxy under no tool, DAMPI, and ISP for each world
// size. ParMETIS has no wildcards, so each verification is exactly one run —
// Figure 5 measures pure instrumentation architecture overhead. workers
// selects the parallel exploration engine (0 = serial).
func Fig5(procSizes []int, scale, workers int) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, procs := range procSizes {
		prog := parmetis.Program(parmetis.Config{Scale: scale, LeakComm: false})

		start := time.Now()
		w := mpi.NewWorld(mpi.Config{Procs: procs})
		if err := w.Run(prog); err != nil {
			return nil, fmt.Errorf("fig5 native p=%d: %w", procs, err)
		}
		native := time.Since(start)

		start = time.Now()
		res, err := verify.Run(verify.Config{Procs: procs, MaxInterleavings: 1, Workers: workers}, prog)
		if err != nil {
			return nil, fmt.Errorf("fig5 dampi p=%d: %w", procs, err)
		}
		if res.Errored() {
			return nil, fmt.Errorf("fig5 dampi p=%d: %v", procs, res.Errors[0].Err)
		}
		dampiT := time.Since(start)

		start = time.Now()
		rep, err := isp.NewExplorer(isp.Config{Procs: procs, Program: prog, MaxInterleavings: 1}).Explore()
		if err != nil {
			return nil, fmt.Errorf("fig5 isp p=%d: %w", procs, err)
		}
		if rep.Errored() {
			return nil, fmt.Errorf("fig5 isp p=%d: %v", procs, rep.Errors[0].Err)
		}
		ispT := time.Since(start)

		rows = append(rows, Fig5Row{Procs: procs, Native: native, DAMPI: dampiT, ISP: ispT})
	}
	return rows, nil
}

// Table1Row is one column of Table I: the ParMETIS proxy's MPI operation
// statistics at one world size.
type Table1Row struct {
	Procs  int
	Totals trace.Totals
	// ScaledBy is the divisor applied to the paper-calibrated counts;
	// multiply the totals back by it to compare with Table I.
	ScaledBy int
}

// Table1 measures the ParMETIS proxy's operation mix per world size.
func Table1(procSizes []int, scale int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, procs := range procSizes {
		stats := trace.NewStats(procs)
		w := mpi.NewWorld(mpi.Config{Procs: procs, Hooks: stats.Hooks()})
		if err := w.Run(parmetis.Program(parmetis.Config{Scale: scale})); err != nil {
			return nil, fmt.Errorf("table1 p=%d: %w", procs, err)
		}
		rows = append(rows, Table1Row{Procs: procs, Totals: stats.Totals(), ScaledBy: scale})
	}
	return rows, nil
}

// Table2Row is one row of Table II: DAMPI's overhead and local error checks
// on one benchmark.
type Table2Row struct {
	Name     string
	Procs    int
	Native   time.Duration
	DAMPI    time.Duration
	Slowdown float64
	RStar    int // wildcard receives/probes analyzed
	CLeak    bool
	RLeak    bool
}

// Table2 runs every Table II benchmark natively and under one DAMPI
// instrumented run, reporting slowdown, R*, and the leak checks. The paper
// uses 1024 processes; any size works here (1024 included).
func Table2(procs, iters, scale, reps int) ([]Table2Row, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []Table2Row
	for _, wl := range workloads.TableII() {
		prog := wl.Program(workloads.Params{Procs: procs, Iters: iters, Scale: scale})

		native := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			w := mpi.NewWorld(mpi.Config{Procs: procs})
			if err := w.Run(prog); err != nil {
				return nil, fmt.Errorf("table2 %s native: %w", wl.Name, err)
			}
			if d := time.Since(start); d < native {
				native = d
			}
		}

		var res *verify.Result
		instr := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			var err error
			res, err = verify.Run(verify.Config{
				Procs:            procs,
				MaxInterleavings: 1,
				CheckLeaks:       true,
			}, prog)
			if err != nil {
				return nil, fmt.Errorf("table2 %s dampi: %w", wl.Name, err)
			}
			if res.Errored() {
				return nil, fmt.Errorf("table2 %s dampi: %v", wl.Name, res.Errors[0].Err)
			}
			if d := time.Since(start); d < instr {
				instr = d
			}
		}

		rows = append(rows, Table2Row{
			Name:     wl.Name,
			Procs:    procs,
			Native:   native,
			DAMPI:    instr,
			Slowdown: float64(instr) / float64(native),
			RStar:    res.WildcardsAnalyzed,
			CLeak:    res.Leaks.HasCommLeak(),
			RLeak:    res.Leaks.HasRequestLeak(),
		})
	}
	return rows, nil
}

// Fig6Row is one point of Figure 6: time for each tool to explore a target
// number of matmul interleavings.
type Fig6Row struct {
	Interleavings int
	DAMPI         time.Duration
	ISP           time.Duration
}

// Fig6 explores matmul interleavings up to each target count under DAMPI
// and ISP, timing the whole exploration. workers selects the parallel
// exploration engine (0 = serial).
func Fig6(targets []int, procs, workers int) ([]Fig6Row, error) {
	prog := matmul.Program(matmul.Config{})
	var rows []Fig6Row
	for _, n := range targets {
		start := time.Now()
		res, err := verify.Run(verify.Config{Procs: procs, MaxInterleavings: n, Workers: workers}, prog)
		if err != nil {
			return nil, fmt.Errorf("fig6 dampi n=%d: %w", n, err)
		}
		if res.Errored() {
			return nil, fmt.Errorf("fig6 dampi n=%d: %v", n, res.Errors[0].Err)
		}
		dampiT := time.Since(start)

		start = time.Now()
		rep, err := isp.NewExplorer(isp.Config{Procs: procs, Program: prog, MaxInterleavings: n}).Explore()
		if err != nil {
			return nil, fmt.Errorf("fig6 isp n=%d: %w", n, err)
		}
		if rep.Errored() {
			return nil, fmt.Errorf("fig6 isp n=%d: %v", n, rep.Errors[0].Err)
		}
		ispT := time.Since(start)

		rows = append(rows, Fig6Row{Interleavings: n, DAMPI: dampiT, ISP: ispT})
	}
	return rows, nil
}

// MixingRow is one point of Figures 8 and 9: interleavings explored at one
// world size for one mixing bound (K = verify.Unbounded for "No Bounds").
type MixingRow struct {
	Procs         int
	K             int
	Interleavings int
	Capped        bool
}

// Fig8 counts matmul interleavings per mixing bound per world size. workers
// selects the parallel exploration engine (0 = serial).
func Fig8(procSizes, ks []int, maxInterleavings, workers int) ([]MixingRow, error) {
	var rows []MixingRow
	for _, procs := range procSizes {
		for _, k := range ks {
			res, err := verify.Run(verify.Config{
				Procs:            procs,
				MixingBound:      k,
				MaxInterleavings: maxInterleavings,
				Workers:          workers,
			}, matmul.Program(matmul.Config{}))
			if err != nil {
				return nil, fmt.Errorf("fig8 p=%d k=%d: %w", procs, k, err)
			}
			if res.Errored() {
				return nil, fmt.Errorf("fig8 p=%d k=%d: %v", procs, k, res.Errors[0].Err)
			}
			rows = append(rows, MixingRow{Procs: procs, K: k, Interleavings: res.Interleavings, Capped: res.Capped})
		}
	}
	return rows, nil
}

// Fig9 counts ADLB interleavings per mixing bound per world size. workers
// selects the parallel exploration engine (0 = serial).
func Fig9(procSizes, ks []int, maxInterleavings, workers int) ([]MixingRow, error) {
	var rows []MixingRow
	for _, procs := range procSizes {
		for _, k := range ks {
			res, err := verify.Run(verify.Config{
				Procs:            procs,
				MixingBound:      k,
				MaxInterleavings: maxInterleavings,
				Workers:          workers,
			}, adlb.Program(adlb.DriverConfig{}))
			if err != nil {
				return nil, fmt.Errorf("fig9 p=%d k=%d: %w", procs, k, err)
			}
			if res.Errored() {
				return nil, fmt.Errorf("fig9 p=%d k=%d: %v", procs, k, res.Errors[0].Err)
			}
			rows = append(rows, MixingRow{Procs: procs, K: k, Interleavings: res.Interleavings, Capped: res.Capped})
		}
	}
	return rows, nil
}
