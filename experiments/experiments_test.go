package experiments

import (
	"testing"

	"dampi/verify"
	"dampi/workloads"
)

// TestFig5Shape: DAMPI must track native time closely while ISP must cost
// more — the paper's headline comparison. Single runs are noisy, so the
// minimum over several samples is compared.
func TestFig5Shape(t *testing.T) {
	minDAMPI := map[int]float64{}
	minISP := map[int]float64{}
	for rep := 0; rep < 3; rep++ {
		rows, err := Fig5([]int{4, 16}, 200, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			d, i := r.DAMPI.Seconds(), r.ISP.Seconds()
			if v, ok := minDAMPI[r.Procs]; !ok || d < v {
				minDAMPI[r.Procs] = d
			}
			if v, ok := minISP[r.Procs]; !ok || i < v {
				minISP[r.Procs] = i
			}
		}
	}
	for procs, d := range minDAMPI {
		if minISP[procs] <= d {
			t.Errorf("procs=%d: ISP min (%.2gs) not slower than DAMPI min (%.2gs)", procs, minISP[procs], d)
		}
	}
}

// TestTable1Shape: the proxy's per-process op mix must scale like Table I.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1([]int{8, 32, 128}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1].Totals, rows[i].Totals
		if cur.SendRecvPerProc() <= prev.SendRecvPerProc() {
			t.Errorf("sendrecv/proc not growing: %d -> %d", prev.SendRecvPerProc(), cur.SendRecvPerProc())
		}
		if cur.All <= prev.All {
			t.Errorf("total ops not growing: %d -> %d", prev.All, cur.All)
		}
	}
}

// TestTable2SmallScale: all 15 rows run; the leak and R* columns must match
// the paper's qualitative entries.
func TestTable2SmallScale(t *testing.T) {
	rows, err := Table2(8, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	want := map[string]struct {
		cleak     bool
		wildcards bool
	}{
		"ParMETIS-3.1": {true, false},
		"104.milc":     {true, true},
		"107.leslie3d": {false, false},
		"113.GemsFDTD": {true, false},
		"126.lammps":   {false, false},
		"130.socorro":  {false, false},
		"137.lu":       {true, true},
		"BT":           {true, false},
		"CG":           {false, false},
		"DT":           {false, false},
		"EP":           {false, false},
		"FT":           {true, false},
		"IS":           {false, false},
		"LU":           {false, true},
		"MG":           {false, false},
	}
	for _, r := range rows {
		w := want[r.Name]
		if r.CLeak != w.cleak {
			t.Errorf("%s: C-leak = %v, want %v", r.Name, r.CLeak, w.cleak)
		}
		if (r.RStar > 0) != w.wildcards {
			t.Errorf("%s: R* = %d, wildcards expected %v", r.Name, r.RStar, w.wildcards)
		}
		if r.RLeak {
			t.Errorf("%s: unexpected R-leak", r.Name)
		}
		if r.Slowdown <= 0 {
			t.Errorf("%s: slowdown %f", r.Name, r.Slowdown)
		}
	}
}

// TestFig8Fig9Shape: bounded mixing must be monotone in k and grow with
// world size.
func TestFig8Fig9Shape(t *testing.T) {
	rows, err := Fig8([]int{3, 4}, []int{0, 1, verify.Unbounded}, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p, k int) int {
		for _, r := range rows {
			if r.Procs == p && r.K == k {
				return r.Interleavings
			}
		}
		t.Fatalf("missing row p=%d k=%d", p, k)
		return 0
	}
	for _, p := range []int{3, 4} {
		if !(get(p, 0) <= get(p, 1) && get(p, 1) <= get(p, verify.Unbounded)) {
			t.Errorf("p=%d: not monotone in k", p)
		}
	}
	if get(3, 0) >= get(4, 0) {
		t.Errorf("k=0 counts not growing with procs")
	}

	arows, err := Fig9([]int{4, 6}, []int{0, 1}, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	aget := func(p, k int) int {
		for _, r := range arows {
			if r.Procs == p && r.K == k {
				return r.Interleavings
			}
		}
		t.Fatalf("missing adlb row p=%d k=%d", p, k)
		return 0
	}
	if aget(4, 0) >= aget(4, 1) {
		t.Error("adlb: k=1 not above k=0")
	}
	if aget(4, 0) >= aget(6, 0) {
		t.Error("adlb: k=0 not growing with procs")
	}
}

// TestPaperScale1024 verifies one instrumented run of a Table II workload at
// the paper's 1024-process scale — "an order of magnitude larger than any
// previously reported results for MPI dynamic verification tools".
func TestPaperScale1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank verification")
	}
	wl, err := workloads.Get("104.milc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(verify.Config{
		Procs:            1024,
		MaxInterleavings: 1,
		CheckLeaks:       true,
	}, wl.Program(workloads.Params{Procs: 1024, Iters: 2, Scale: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		t.Fatalf("milc at 1024: %v", res.Errors[0].Err)
	}
	// Table II: R* = 51K at 1024 procs (~50/rank; Iters=2 halves the default).
	if res.WildcardsAnalyzed < 20000 {
		t.Errorf("R* = %d at 1024 procs, want tens of thousands", res.WildcardsAnalyzed)
	}
	if !res.Leaks.HasCommLeak() {
		t.Error("milc C-leak missed at scale")
	}
}
