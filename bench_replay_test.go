// BenchmarkReplayBaseline is the tracked replay-throughput baseline: it
// self-times the canonical exploration workloads, compares them against the
// pinned pre-overhaul numbers, and writes the whole picture to
// BENCH_replay.json (committed to the repo; CI regenerates it as a build
// artifact). Refresh it with:
//
//	go test -run=NONE -bench=ReplayBaseline -benchtime=1x .
//
// DESIGN.md ("Performance") documents how to read the file.
package dampi

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dampi/mpi"
	"dampi/verify"
	"dampi/workloads/adlb"
	"dampi/workloads/matmul"
	"dampi/workloads/parmetis"
)

// Pre-overhaul numbers (measured on the same reference machine at the commit
// before the sharded matching engine and zero-alloc piggyback path landed) —
// the denominators for the tracked speedups.
const (
	prePRPingPongNsPerOp     = 5564
	prePRPingPongBytesPerOp  = 1346
	prePRPingPongAllocsPerOp = 32
	prePRMatmulW8PerSec      = 2870.0
	prePRADLBW8PerSec        = 3330.0
)

// Pre-work-stealing numbers: the committed BENCH_replay.json at the commit
// before the per-worker-deque engine landed (single-P runs on the reference
// machine), kept so the stealing engine's effect stays visible next to the
// fresh numbers.
const (
	preStealingMatmulW1PerSec = 12200.7
	preStealingMatmulW8PerSec = 8465.5
	preStealingADLBW1PerSec   = 13172.9
	preStealingADLBW8PerSec   = 8402.9
)

type replayRate struct {
	Interleavings int     `json:"interleavings"`
	Millis        float64 `json:"millis"`
	PerSecond     float64 `json:"per_second"`
	// GOMAXPROCS is the P count the section ran under (parallel sections are
	// pinned to min(workers, NumCPU); see parallelProcs).
	GOMAXPROCS int `json:"gomaxprocs"`
}

type pingPongStats struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type replayBaseline struct {
	GeneratedBy string `json:"generated_by"`
	// NumCPU is the machine's core count; parallel throughput only means
	// anything relative to it (workers beyond NumCPU cannot add wall-clock
	// speed, only contention).
	NumCPU int `json:"num_cpu"`
	// SerialGOMAXPROCS is the P count for the serial sections (pingpong,
	// workers=1, slowdown); ParallelGOMAXPROCS is the P count the widest
	// (workers=8) section was pinned to.
	SerialGOMAXPROCS   int `json:"serial_gomaxprocs"`
	ParallelGOMAXPROCS int `json:"parallel_gomaxprocs"`

	// PingPong is the raw runtime message-matching floor (2 msgs/op).
	PingPong pingPongStats `json:"pingpong"`
	// Matmul/ADLB map worker-pool size -> replay throughput.
	Matmul map[string]replayRate `json:"matmul"`
	ADLB   map[string]replayRate `json:"adlb"`
	// NativeVsDAMPISlowdown is one instrumented single-interleaving run over
	// one uninstrumented run of the same deterministic program (ParMETIS
	// proxy), the Table II overhead headline.
	NativeVsDAMPISlowdown float64 `json:"native_vs_dampi_slowdown"`

	PrePR struct {
		PingPong          pingPongStats `json:"pingpong"`
		MatmulW8PerSecond float64       `json:"matmul_workers8_per_second"`
		ADLBW8PerSecond   float64       `json:"adlb_workers8_per_second"`
	} `json:"pre_overhaul_baseline"`
	PreStealing struct {
		MatmulW1PerSecond float64 `json:"matmul_workers1_per_second"`
		MatmulW8PerSecond float64 `json:"matmul_workers8_per_second"`
		ADLBW1PerSecond   float64 `json:"adlb_workers1_per_second"`
		ADLBW8PerSecond   float64 `json:"adlb_workers8_per_second"`
	} `json:"pre_stealing_baseline"`
	Speedup struct {
		MatmulW8        float64 `json:"matmul_workers8"`
		ADLBW8          float64 `json:"adlb_workers8"`
		PingPongAllocs  float64 `json:"pingpong_allocs_ratio"`
		PingPongLatency float64 `json:"pingpong_latency_ratio"`
	} `json:"speedup_vs_pre_overhaul"`
}

// measurePingPong times iters send/recv round-trips between two ranks (one
// op = one round-trip = 2 msgs, matching BenchmarkRuntime_PingPong) and
// derives per-op allocation stats from the process-wide MemStats delta. World
// setup is inside the measured window, amortized over iters like the real
// benchmark's b.N loop.
func measurePingPong(b *testing.B, iters int) pingPongStats {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	w := mpi.NewWorld(mpi.Config{Procs: 2})
	err := w.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		buf := []byte("x")
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				if err := p.Send(1, 0, buf, c); err != nil {
					return err
				}
				if _, _, err := p.Recv(1, 0, c); err != nil {
					return err
				}
			} else {
				if _, _, err := p.Recv(0, 0, c); err != nil {
					return err
				}
				if err := p.Send(0, 0, buf, c); err != nil {
					return err
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		b.Fatal(err)
	}
	return pingPongStats{
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
	}
}

// timeExplore runs one exploration config reps times and returns the fastest
// rep's throughput (best-of-N suppresses scheduler noise on small machines).
func timeExplore(b *testing.B, cfg verify.Config, prog func(*mpi.Proc) error, reps int) replayRate {
	b.Helper()
	best := replayRate{}
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := verify.Run(cfg, prog)
		el := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if res.Errored() {
			b.Fatal(res.Errors[0].Err)
		}
		rate := float64(res.Interleavings) / el.Seconds()
		if rate > best.PerSecond {
			best = replayRate{
				Interleavings: res.Interleavings,
				Millis:        float64(el.Microseconds()) / 1000,
				PerSecond:     rate,
				GOMAXPROCS:    runtime.GOMAXPROCS(0),
			}
		}
	}
	return best
}

// parallelProcs is the P count a workers-wide section is pinned to: at least
// the serial setting, raised toward the worker count but never past NumCPU —
// Ps beyond physical cores add scheduler churn, not parallelism, so on a
// machine with >= workers cores this yields GOMAXPROCS >= workers and on a
// smaller machine it honestly reports what the hardware can do.
func parallelProcs(workers, serial int) int {
	p := workers
	if n := runtime.NumCPU(); p > n {
		p = n
	}
	if p < serial {
		p = serial
	}
	return p
}

func BenchmarkReplayBaseline(b *testing.B) {
	// The emitter self-times one full measurement pass per invocation and
	// ignores b.N; run it with -benchtime=1x (as the CI smoke step does).
	serialProcs := runtime.GOMAXPROCS(0)
	out := replayBaseline{
		GeneratedBy:        "go test -run=NONE -bench=ReplayBaseline -benchtime=1x .",
		NumCPU:             runtime.NumCPU(),
		SerialGOMAXPROCS:   serialProcs,
		ParallelGOMAXPROCS: parallelProcs(8, serialProcs),
		Matmul:             map[string]replayRate{},
		ADLB:               map[string]replayRate{},
	}

	// Raw runtime floor. testing.Benchmark deadlocks when nested inside a
	// running benchmark, so this self-times the same loop as
	// BenchmarkRuntime_PingPong and reads MemStats around it.
	out.PingPong = measurePingPong(b, 20000)

	// Replay throughput at the tracked pool sizes. Parallel sections pin
	// GOMAXPROCS so a multi-worker pool actually gets the Ps it needs (the go
	// test default follows the invoking environment, which on CI runners is
	// often 1): without this, workers=8 measures lock traffic on one P, not
	// parallel replay.
	mm := matmul.Program(matmul.Config{})
	al := adlb.Program(adlb.DriverConfig{})
	for _, workers := range []int{1, 4, 8} {
		key := fmt.Sprintf("workers=%d", workers)
		prev := runtime.GOMAXPROCS(parallelProcs(workers, serialProcs))
		out.Matmul[key] = timeExplore(b, verify.Config{
			Procs: 8, MaxInterleavings: 2000, Workers: workers,
		}, mm, 3)
		out.ADLB[key] = timeExplore(b, verify.Config{
			Procs: 8, MixingBound: 1, MaxInterleavings: 2000, Workers: workers,
		}, al, 3)
		runtime.GOMAXPROCS(prev)
	}

	// Native-vs-DAMPI slowdown on a deterministic program.
	pm := parmetis.Program(parmetis.Config{Scale: 100})
	native := time.Duration(1<<63 - 1)
	instrumented := native
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := mpi.NewWorld(mpi.Config{Procs: 16}).Run(pm); err != nil {
			b.Fatal(err)
		}
		if el := time.Since(start); el < native {
			native = el
		}
		start = time.Now()
		res, err := verify.Run(verify.Config{Procs: 16, MaxInterleavings: 1}, pm)
		if err != nil {
			b.Fatal(err)
		}
		if res.Errored() {
			b.Fatal(res.Errors[0].Err)
		}
		if el := time.Since(start); el < instrumented {
			instrumented = el
		}
	}
	out.NativeVsDAMPISlowdown = instrumented.Seconds() / native.Seconds()

	out.PrePR.PingPong = pingPongStats{
		NsPerOp:     prePRPingPongNsPerOp,
		BytesPerOp:  prePRPingPongBytesPerOp,
		AllocsPerOp: prePRPingPongAllocsPerOp,
	}
	out.PrePR.MatmulW8PerSecond = prePRMatmulW8PerSec
	out.PrePR.ADLBW8PerSecond = prePRADLBW8PerSec
	out.PreStealing.MatmulW1PerSecond = preStealingMatmulW1PerSec
	out.PreStealing.MatmulW8PerSecond = preStealingMatmulW8PerSec
	out.PreStealing.ADLBW1PerSecond = preStealingADLBW1PerSec
	out.PreStealing.ADLBW8PerSecond = preStealingADLBW8PerSec
	out.Speedup.MatmulW8 = out.Matmul["workers=8"].PerSecond / prePRMatmulW8PerSec
	out.Speedup.ADLBW8 = out.ADLB["workers=8"].PerSecond / prePRADLBW8PerSec
	out.Speedup.PingPongAllocs = prePRPingPongAllocsPerOp / float64(out.PingPong.AllocsPerOp)
	out.Speedup.PingPongLatency = prePRPingPongNsPerOp / float64(out.PingPong.NsPerOp)

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_replay.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}

	b.ReportMetric(out.Matmul["workers=8"].PerSecond, "matmul8/s")
	b.ReportMetric(out.ADLB["workers=8"].PerSecond, "adlb8/s")
	b.ReportMetric(float64(out.PingPong.AllocsPerOp), "pingpong-allocs")
	b.ReportMetric(out.NativeVsDAMPISlowdown, "slowdown")

	for i := 0; i < b.N; i++ {
		// Self-timed above.
	}
}
